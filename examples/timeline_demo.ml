(* Timeline graphs (the paper's visualization contribution, §3.1).

     dune exec examples/timeline_demo.exe

   Renders timeline graphs for Naive Token-EBR — the paper's most dramatic
   picture (Fig 6): with free-before-pass, threads reclaim strictly one
   after another and the "curve" of serialized batch frees appears. Then
   the same workload under Amortized-free Token-EBR, where the pathology
   disappears. Also writes the raw event data as CSV for external
   plotting. *)

let run smr =
  let config =
    {
      Runtime.Config.default with
      Runtime.Config.smr;
      threads = 64;
      key_range = 8192;
      duration_ns = 15_000_000;
      grace_ns = 15_000_000;
      trials = 1;
      timeline = true;
    }
  in
  Runtime.Runner.run_trial config ~seed:3

let show label (t : Runtime.Trial.t) =
  Printf.printf "=== %s: %s ops/s, %d epochs, end garbage %s ===\n" label
    (Report.Table.mops t.Runtime.Trial.throughput)
    t.Runtime.Trial.epochs
    (Report.Table.count t.Runtime.Trial.end_garbage);
  (match t.Runtime.Trial.timeline_reclaim with
  | Some tl when Timeline.total_events tl > 0 ->
      print_string
        (Timeline.render ~threads:16 ~t0:t.Runtime.Trial.measure_start
           ~t1:t.Runtime.Trial.deadline tl)
  | Some _ | None -> print_endline "(no batch reclamation events)");
  print_newline ()

let () =
  let naive = run "token-naive" in
  show "Naive Token-EBR (free, then pass: reclamation serializes)" naive;
  let af = run "token_af" in
  show "Amortized-free Token-EBR (splice and drain: no batch events at all)" af;
  (* Export the naive run for external tools: CSV for analysis, SVG for a
     publication-quality figure. *)
  (match naive.Runtime.Trial.timeline_reclaim with
  | Some tl ->
      let csv = "timeline_naive_token.csv" in
      let oc = open_out csv in
      output_string oc (Timeline.to_csv tl);
      close_out oc;
      let svg = "timeline_naive_token.svg" in
      Timeline.Svg.write_file svg
        (Timeline.Svg.render ~title:"Naive Token-EBR: serialized batch frees"
           ~t0:naive.Runtime.Trial.measure_start ~t1:naive.Runtime.Trial.deadline tl);
      Printf.printf "Raw events written to %s, figure to %s\n" csv svg
  | None -> ())
