(* Bring your own data structure: implement Ds_intf.t and run it through
   the full harness unchanged.

     dune exec examples/custom_structure.exe

   The structure here is a deliberately allocation-heavy "versioned cell"
   array: every update copies a 128-byte cell (think shadow-paged records
   in an in-memory database). Because it allocates and retires one object
   per operation — like the ABtree — batch freeing hits the RBF problem
   and amortized freeing fixes it, showing the paper's insight transfers
   beyond trees. *)

open Simcore

let cell_bytes = 128

let make_versioned_array ~slots (ctx : Ds.Ds_intf.ctx) (th : Sched.thread) =
  (* Each slot holds the handle of its current version; a "key" maps to a
     slot, an update installs a fresh version and retires the old one. *)
  let slot_of key = key mod slots in
  let handles = Array.init slots (fun _ -> ctx.Ds.Ds_intf.alloc.Alloc.Alloc_intf.malloc th cell_bytes) in
  let size = ref slots in
  let update (th : Sched.thread) key =
    let s = slot_of key in
    let fresh = ctx.Ds.Ds_intf.alloc.Alloc.Alloc_intf.malloc th cell_bytes in
    let old = handles.(s) in
    handles.(s) <- fresh;
    ctx.Ds.Ds_intf.retire th old;
    Ds.Ds_intf.charge ctx th 2;
    { Ds.Ds_intf.changed = true; visited = 2 }
  in
  let read (th : Sched.thread) key =
    ignore (handles.(slot_of key));
    Ds.Ds_intf.charge ctx th 1;
    { Ds.Ds_intf.changed = true; visited = 1 }
  in
  {
    Ds.Ds_intf.name = "versioned-array";
    insert = update;  (* both workload halves are updates *)
    delete = update;
    contains = read;
    size = (fun () -> !size);
    node_count = (fun () -> slots);
    check_invariants = (fun () -> ());
    allocs_per_update = 1.0;
  }

(* Run the standard workload loop manually against the custom structure. *)
let run ~smr_name ~threads =
  let sched = Sched.create ~topology:Topology.intel_192t ~n_threads:threads ~seed:21 () in
  let alloc = Alloc.Registry.make "jemalloc" sched in
  let base, af = Smr.Smr_registry.parse smr_name in
  let mode = if af then Smr.Free_policy.Amortized 1 else Smr.Free_policy.Batch in
  let policy = Smr.Free_policy.create ~mode ~alloc ~n:threads () in
  let ctx = { Smr.Smr_intf.sched; alloc; policy; safety = None } in
  let smr = Smr.Smr_registry.make base ctx in
  let ds_ctx = { Ds.Ds_intf.alloc; retire = smr.Smr.Smr_intf.retire; node_cost = 120 } in
  let ds = ref None in
  Sched.spawn sched (Sched.thread sched 0) (fun th ->
      ds := Some (make_versioned_array ~slots:4096 ds_ctx th));
  Sched.run sched;
  let ds = Option.get !ds in
  let deadline = 10_000_000 in
  Array.iter
    (fun th ->
      Sched.spawn sched th (fun th ->
          while Sched.now th < deadline do
            smr.Smr.Smr_intf.begin_op th;
            let key = Rng.int_below th.Sched.rng 4096 in
            ignore (Sched.atomically th (fun () -> ds.Ds.Ds_intf.insert th key));
            smr.Smr.Smr_intf.end_op th;
            th.Sched.metrics.Metrics.ops <- th.Sched.metrics.Metrics.ops + 1;
            Sched.checkpoint th
          done))
    (Sched.threads sched);
  Sched.run sched;
  let agg = Metrics.create () in
  Array.iter (fun (th : Sched.thread) -> Metrics.merge agg th.Sched.metrics) (Sched.threads sched);
  let tput = float_of_int agg.Metrics.ops /. (float_of_int deadline /. 1e9) in
  Printf.printf "  %-10s %10s ops/s   %%free %5.1f   %%lock %5.1f\n%!" smr_name
    (Report.Table.mops tput) (Metrics.pct_free agg) (Metrics.pct_lock agg)

let () =
  print_endline "Custom structure (copy-on-write versioned array), 128 threads:";
  run ~smr_name:"debra" ~threads:128;
  run ~smr_name:"debra_af" ~threads:128;
  print_endline "\nThe RBF problem and the amortized-free fix are not tree-specific:";
  print_endline "any structure that retires about one object per update reproduces them."
