(* Real multicore OCaml: epoch-based reclamation of off-heap memory.

     dune exec examples/multicore_offheap.exe

   OCaml's GC frees heap values for you — but not Bigarray slabs, C
   buffers or descriptors referenced from lock-free structures. This
   example runs four domains over a shared Treiber stack whose payloads
   are blocks of an off-heap slab: pops retire blocks through the paper's
   Token-EBR (amortized), and the per-block sequence numbers prove no
   block was ever recycled while a domain could still read it. *)

let () =
  let domains = 4 and ops = 50_000 and blocks = 8192 in
  let slab = Parallel.Slab.create ~blocks ~block_words:8 in
  let stack = Parallel.Treiber_stack.create () in
  let ring =
    Parallel.Token_ring.create ~mode:(Parallel.Token_ring.Amortized 1) ~max_domains:domains ()
  in
  let handles = Array.init domains (fun _ -> Parallel.Token_ring.register ring) in
  let violations = Atomic.make 0 in
  let worker i () =
    let h = handles.(i) in
    for op = 1 to ops do
      Parallel.Token_ring.enter h;
      (if (op + i) land 1 = 0 then
         match Parallel.Slab.alloc slab with
         | Some b ->
             Parallel.Slab.write slab b ~word:0 (b lxor 0x5A5A);
             Parallel.Treiber_stack.push stack ~value:b ~seq:(Parallel.Slab.sequence slab b)
         | None -> ()
       else
         match Parallel.Treiber_stack.pop stack with
         | Some (b, seq) ->
             if
               Parallel.Slab.sequence slab b <> seq
               || Parallel.Slab.read slab b ~word:0 <> b lxor 0x5A5A
             then Atomic.incr violations;
             Parallel.Token_ring.retire h (fun () -> Parallel.Slab.free slab b)
         | None -> ());
      Parallel.Token_ring.exit h
    done
  in
  let t0 = Unix.gettimeofday () in
  let ds = Array.init domains (fun i -> Domain.spawn (worker i)) in
  Array.iter Domain.join ds;
  let dt = Unix.gettimeofday () -. t0 in
  let retired = Array.fold_left (fun a h -> a + Parallel.Token_ring.retired h) 0 handles in
  let released = Array.fold_left (fun a h -> a + Parallel.Token_ring.released h) 0 handles in
  let receipts = Array.fold_left (fun a h -> a + Parallel.Token_ring.receipts h) 0 handles in
  Printf.printf "%d domains x %d ops in %.2fs (%.1fM ops/s)\n" domains ops dt
    (float_of_int (domains * ops) /. dt /. 1e6);
  Printf.printf "token receipts: %d   blocks retired: %d   released in-flight: %d\n"
    receipts retired released;
  Printf.printf "use-after-free detections: %d (must be 0)\n" (Atomic.get violations);
  Array.iter Parallel.Token_ring.flush_unsafe handles;
  let rec drain () =
    match Parallel.Treiber_stack.pop stack with
    | Some (b, _) -> Parallel.Slab.free slab b; drain ()
    | None -> ()
  in
  drain ();
  Printf.printf "blocks conserved: %d/%d back on the free list\n"
    (Parallel.Slab.free_blocks slab) (Parallel.Slab.capacity slab);
  if Atomic.get violations > 0 then Stdlib.exit 1
