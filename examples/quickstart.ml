(* Quickstart: run one experiment through the high-level API.

     dune exec examples/quickstart.exe

   Simulates the paper's core comparison — DEBRA with batch free vs
   amortized free on a lock-free ABtree over JEmalloc at 192 threads — and
   prints the headline numbers. *)

let () =
  let config =
    {
      Runtime.Config.default with
      Runtime.Config.ds = "abtree";
      alloc = "jemalloc";
      threads = 192;
      key_range = 1 lsl 14;
      duration_ns = 20_000_000;  (* 20 virtual milliseconds *)
      grace_ns = 20_000_000;
      trials = 1;
    }
  in
  Printf.printf "Simulating a 4-socket, 192-thread Intel machine (%s)...\n\n%!"
    config.Runtime.Config.topology.Simcore.Topology.name;
  let describe label smr =
    let trial = Runtime.Runner.run_trial { config with Runtime.Config.smr } ~seed:1 in
    Printf.printf "%-28s %8s ops/s   %%free %5.1f   %%lock %5.1f   peak mem %s\n%!" label
      (Report.Table.mops trial.Runtime.Trial.throughput)
      trial.Runtime.Trial.pct_free trial.Runtime.Trial.pct_lock
      (Report.Table.bytes trial.Runtime.Trial.peak_mapped_bytes)
  in
  describe "DEBRA, batch free" "debra";
  describe "DEBRA, amortized free" "debra_af";
  describe "Token-EBR, amortized free" "token_af";
  describe "no reclamation (leak)" "none";
  print_newline ();
  print_endline "Batch free hits the remote-batch-free (RBF) problem: the allocator's";
  print_endline "thread caches overflow and objects are returned to remote arena bins";
  print_endline "under contended locks. Amortized freeing spreads the same frees over";
  print_endline "operations, so the caches recycle them locally — and even beats leaking."
