(* A miniature Experiment 1: compare every reclaimer on the same workload.

     dune exec examples/reclaimer_shootout.exe -- [threads] [ds]

   Defaults to 96 threads on the ABtree. Sorts the field by throughput and
   flags the amortized-free variants. *)

let () =
  let threads = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 96 in
  let ds = if Array.length Sys.argv > 2 then Sys.argv.(2) else "abtree" in
  let config =
    {
      Runtime.Config.default with
      Runtime.Config.ds;
      threads;
      key_range = 8192;
      duration_ns = 15_000_000;
      grace_ns = 15_000_000;
      trials = 1;
    }
  in
  let reclaimers =
    [ "token_af"; "debra_af"; "nbr+"; "nbr"; "ibr"; "rcu"; "qsbr"; "debra"; "token"; "wfe"; "he"; "hp"; "none" ]
  in
  Printf.printf "Reclaimer shootout: %s, %d threads, 50%% insert / 50%% delete\n\n%!" ds threads;
  let results =
    List.map
      (fun smr ->
        let t = Runtime.Runner.run_trial { config with Runtime.Config.smr } ~seed:5 in
        Printf.printf "  %-18s done\n%!" smr;
        (smr, t))
      reclaimers
  in
  let sorted =
    List.sort
      (fun (_, a) (_, b) -> compare b.Runtime.Trial.throughput a.Runtime.Trial.throughput)
      results
  in
  Printf.printf "\n%-18s %10s %8s %8s %12s\n" "reclaimer" "ops/s" "%free" "%lock" "peak memory";
  Printf.printf "%s\n" (String.make 60 '-');
  List.iter
    (fun (smr, (t : Runtime.Trial.t)) ->
      Printf.printf "%-18s %10s %8.1f %8.1f %12s\n" smr
        (Report.Table.mops t.Runtime.Trial.throughput)
        t.Runtime.Trial.pct_free t.Runtime.Trial.pct_lock
        (Report.Table.bytes t.Runtime.Trial.peak_mapped_bytes))
    sorted
